/**
 * @file
 * Serving scenario: an on-device assistant under load.
 *
 * Part 1 — burst: twelve warm-context requests land at once and the
 * engine serves them with continuous batching at a batch limit of 4,
 * compared against strictly serial service of the same queue.
 *
 * Part 2 — arrivals: chat turns with real prompts arrive as a seeded
 * Poisson process and the unified scheduler serves them with chunked
 * prefill interleaved into in-flight decode on a contended NPU,
 * compared against FCFS whole-prompt prefill. Reports the numbers an
 * on-device assistant is actually judged by: p50/p95/p99 time to
 * first token and time between tokens.
 *
 * Part 3 — memory wall: the same arrival load served from a bounded
 * paged KV pool (the DRAM a real device actually has left for KV).
 * At 3/8 of the trace's KV demand the scheduler queues admissions,
 * preempts the latest-arrived request when the pool runs dry and
 * recomputes its evicted KV — the tail-latency price of the memory
 * wall, next to the unbounded run of part 2.
 *
 * Part 4 — faults: the same load again, but the NAND is old. Every
 * read rolls against an uncorrectable-page rate and failed pages
 * climb a read-retry ladder; mid-run, flash channel 0 dies outright,
 * its weight shards remap to the survivors, and in-flight reads
 * re-issue. Deadlines and TTFT-SLO shedding are armed, so requests
 * the degraded array can no longer serve in time are shed or torn
 * down instead of wedging the batch. Reports the resilience bill:
 * retry traffic, remap bytes, shed/timeout counts, p95 TTFT delta.
 */

#include <cstdio>
#include <vector>

#include "core/arrivals.h"
#include "core/batch_engine.h"
#include "core/presets.h"
#include "core/scheduler.h"
#include "llm/model_config.h"

using namespace camllm;
using namespace camllm::core;

int
main()
{
    const CamConfig cfg = presetL();
    const llm::ModelConfig model = llm::llama2_70b();

    // (context, reply tokens): chat turns, two long-document queries,
    // code completions.
    const std::vector<RequestSpec> queue = {
        {512, 3},   {768, 2},  {1024, 3}, {640, 2},
        {8192, 2},  {12288, 2},
        {2048, 3},  {1536, 2}, {3072, 2}, {896, 3},
        {4096, 2},  {1280, 2},
    };

    BatchEngine engine(cfg, model);
    const BatchStats batched = engine.run(queue, 4);
    const BatchStats serial = engine.run(queue, 1);

    std::printf("camllm serving_sim: %zu requests on %s / %s\n\n",
                queue.size(), cfg.name.c_str(), model.name.c_str());
    std::printf("%4s %8s %7s %11s %12s %14s %8s\n", "req", "context",
                "tokens", "admit (ms)", "finish (ms)", "mean tok (ms)",
                "tok/s");
    for (const RequestStats &r : batched.requests)
        std::printf("%4u %8u %7u %11.2f %12.2f %14.1f %8.3f\n", r.id,
                    r.context, r.decode_tokens,
                    double(r.admit_tick) / 1e6,
                    double(r.finish_tick) / 1e6,
                    double(r.mean_token_time) / 1e6, r.tokens_per_s);

    std::printf("\n%-34s %10s %10s\n", "", "batch=4", "serial");
    std::printf("%-34s %10.3f %10.3f\n", "aggregate tokens/s",
                batched.aggregate_tokens_per_s,
                serial.aggregate_tokens_per_s);
    std::printf("%-34s %10.3f %10.3f\n", "finite-run tokens/s",
                batched.finite_run_tokens_per_s,
                serial.finite_run_tokens_per_s);
    std::printf("%-34s %9.1f%% %9.1f%%\n", "channel utilization",
                100.0 * batched.avg_channel_util,
                100.0 * serial.avg_channel_util);
    std::printf("%-34s %10.3f %10.3f\n", "Jain fairness",
                batched.fairness_jain, serial.fairness_jain);
    std::printf("%-34s %9.1fms %9.1fms\n", "sim makespan",
                double(batched.sim_makespan) / 1e6,
                double(serial.sim_makespan) / 1e6);
    std::printf("\ncontinuous batching served the burst %.2fx faster "
                "than serial decode.\n",
                serial.finite_run_tokens_per_s > 0.0
                    ? batched.finite_run_tokens_per_s /
                          serial.finite_run_tokens_per_s
                    : 0.0);

    // --- part 2: Poisson arrivals with real prompts ------------------
    // Chat turns (short prompt, short reply) with the occasional long
    // document; one request every ~2.5 simulated seconds on average.
    const std::vector<RequestShape> shapes = {
        {384, 3}, {768, 2}, {1536, 1}};
    const ArrivalTrace trace =
        ArrivalTrace::poisson(0.4, 8, /*seed=*/2024, shapes);

    const Scheduler sched(cfg, model);
    const auto serveWith = [&](SchedPolicy policy) {
        SchedOptions opt;
        opt.max_batch = 4;
        opt.policy = policy;
        opt.prefill_chunk = 256;
        opt.npu_contention = true;
        return sched.serve(trace, opt);
    };
    const ServeStats fcfs =
        serveWith(SchedPolicy::DecodeFirstFcfs);
    const ServeStats chunked =
        serveWith(SchedPolicy::ChunkedInterleave);

    std::printf("\n--- Poisson arrivals: %zu requests, batch 4, "
                "contended NPU ---\n\n",
                trace.size());
    std::printf("%4s %8s %7s %12s %12s %11s %13s\n", "req", "prompt",
                "reply", "arrive (ms)", "admit (ms)", "TTFT (ms)",
                "mean TBT (ms)");
    for (const ServeRequestStats &r : chunked.requests)
        std::printf("%4u %8u %7u %12.1f %12.1f %11.0f %13.0f\n",
                    r.id, r.prompt, r.decode_tokens,
                    double(r.arrival) / 1e6,
                    double(r.admit_tick) / 1e6, r.ttft_ms,
                    r.mean_tbt_ms);

    std::printf("\n%-26s %14s %14s\n", "", "chunked 256",
                "fcfs whole");
    std::printf("%-26s %13.0fms %13.0fms\n", "TTFT p50",
                chunked.ttft.p50_ms, fcfs.ttft.p50_ms);
    std::printf("%-26s %13.0fms %13.0fms\n", "TTFT p95",
                chunked.ttft.p95_ms, fcfs.ttft.p95_ms);
    std::printf("%-26s %13.0fms %13.0fms\n", "TBT p95",
                chunked.tbt.p95_ms, fcfs.tbt.p95_ms);
    std::printf("%-26s %13.1f%% %13.1f%%\n", "NPU array util",
                100.0 * chunked.npu_array_util,
                100.0 * fcfs.npu_array_util);
    std::printf("%-26s %14.2f %14.2f\n", "finite-run tok/s",
                chunked.finite_run_tokens_per_s,
                fcfs.finite_run_tokens_per_s);
    std::printf("\nchunked prefill interleaving kept p95 TBT %.1fx "
                "lower than whole-prompt FCFS.\n",
                chunked.tbt.p95_ms > 0.0
                    ? fcfs.tbt.p95_ms / chunked.tbt.p95_ms
                    : 0.0);

    // --- part 3: the same load against a bounded KV pool -------------
    // 64-token KV blocks; budget = 3/8 of the trace's total KV demand,
    // the regime where a 70B model's KV no longer fits the DRAM left
    // beside the weights.
    const std::uint32_t block_tokens = 64;
    const std::uint64_t token_kv_bytes =
        std::uint64_t(model.kvDim()) *
        (llm::QuantSpec::of(cfg.quant).act_bits / 8) * model.n_layers;
    std::uint64_t demand_blocks = 0;
    for (const ServeRequest &r : trace.requests())
        demand_blocks += (std::uint64_t(r.context) + r.prompt +
                          r.decode_tokens + block_tokens - 1) /
                         block_tokens;

    SchedOptions bounded;
    bounded.max_batch = 4;
    bounded.policy = SchedPolicy::ChunkedInterleave;
    bounded.prefill_chunk = 256;
    bounded.npu_contention = true;
    bounded.kv_block_tokens = block_tokens;
    bounded.kv_budget_bytes =
        demand_blocks * 3 / 8 * block_tokens * token_kv_bytes;
    const ServeStats walled = sched.serve(trace, bounded);

    std::printf("\n--- bounded KV pool: %llu of %llu blocks "
                "(64-token blocks, ~%.0f MB) ---\n\n",
                (unsigned long long)walled.kv_blocks_total,
                (unsigned long long)demand_blocks,
                double(bounded.kv_budget_bytes) / 1e6);
    std::printf("%-26s %14s %14s\n", "", "bounded", "unbounded");
    std::printf("%-26s %13.0fms %13.0fms\n", "TTFT p95",
                walled.ttft.p95_ms, chunked.ttft.p95_ms);
    std::printf("%-26s %13.0fms %13.0fms\n", "TBT p95",
                walled.tbt.p95_ms, chunked.tbt.p95_ms);
    std::printf("%-26s %14.2f %14.2f\n", "finite-run tok/s",
                walled.finite_run_tokens_per_s,
                chunked.finite_run_tokens_per_s);
    std::printf("%-26s %14u %14u\n", "preemptions",
                walled.preemptions, chunked.preemptions);
    std::printf("%-26s %14llu %14llu\n", "KV tokens recomputed",
                (unsigned long long)walled.recompute_tokens,
                (unsigned long long)chunked.recompute_tokens);
    std::printf("%-26s %11llu/%-3llu %14llu\n", "KV blocks high/total",
                (unsigned long long)walled.kv_blocks_high_water,
                (unsigned long long)walled.kv_blocks_total,
                (unsigned long long)chunked.kv_blocks_high_water);
    std::printf("\nbounding KV capacity cost %.0f ms of p95 TTFT and "
                "%u preemption(s) on this trace.\n",
                walled.ttft.p95_ms - chunked.ttft.p95_ms,
                walled.preemptions);

    // --- part 4: the NAND is old and a channel dies mid-run ----------
    // 5% of page reads fail ECC and climb the retry ladder; channel 0
    // goes offline a few simulated seconds in, forcing a weight remap
    // onto the 31 survivors and re-issue of its in-flight reads.
    // Deadlines and TTFT-SLO shedding are armed so the degraded array
    // sheds what it can no longer serve in time. Contention is off in
    // both columns: retry jitter on a contended array shifts stream
    // phases, which would muddy the fault bill we want to isolate.
    SchedOptions aged;
    aged.max_batch = 4;
    aged.policy = SchedPolicy::ChunkedInterleave;
    aged.prefill_chunk = 256;
    aged.npu_contention = false;
    const ServeStats sound = sched.serve(trace, aged);

    aged.request_deadline = 12 * kSec;
    aged.slo_ttft_ms = sound.ttft.p95_ms;
    aged.degrade = DegradePolicy::ShedNewest;
    aged.faults.ucp_rate = 0.05;
    aged.faults.seed = 7;
    aged.faults.addOffline(0, 4 * kSec);
    const ServeStats faulty = sched.serve(trace, aged);

    std::printf("\n--- aging NAND: 5%% uncorrectable pages, channel 0 "
                "dies at 4 s (sim) ---\n\n");
    std::printf("%-26s %14s %14s\n", "", "healthy", "degraded");
    std::printf("%-26s %13.0fms %13.0fms\n", "TTFT p95",
                sound.ttft.p95_ms, faulty.ttft.p95_ms);
    std::printf("%-26s %13.0fms %13.0fms\n", "TBT p95",
                sound.tbt.p95_ms, faulty.tbt.p95_ms);
    std::printf("%-26s %14.3f %14.3f\n", "goodput tok/s",
                sound.goodput_tokens_per_s,
                faulty.goodput_tokens_per_s);
    std::printf("%-26s %8u/%u/%-4u %8u/%u/%-4u\n",
                "done/shed/timeout", sound.completed, sound.shed_slo,
                sound.timeouts, faulty.completed, faulty.shed_slo,
                faulty.timeouts);
    std::printf("%-26s %14llu %14llu\n", "read retries",
                (unsigned long long)sound.read_retries,
                (unsigned long long)faulty.read_retries);
    std::printf("%-26s %12.1fMB %12.1fMB\n", "retry channel traffic",
                double(sound.retry_channel_bytes) / 1e6,
                double(faulty.retry_channel_bytes) / 1e6);
    std::printf("%-26s %12.1fMB %12.1fMB\n", "weight remap traffic",
                double(sound.remap_bytes) / 1e6,
                double(faulty.remap_bytes) / 1e6);
    std::printf("%-26s %14u %14u\n", "channels lost",
                sound.channels_lost, faulty.channels_lost);
    std::printf("%-26s %14u %14u\n", "reads re-issued",
                sound.reissued_jobs, faulty.reissued_jobs);
    std::printf("\nlosing a channel plus 5%%-UCP retries cost %.0f ms "
                "of p95 TTFT and %.1f MB of retry+remap traffic; "
                "%u request(s) shed, %u timed out.\n",
                faulty.ttft.p95_ms - sound.ttft.p95_ms,
                double(faulty.retry_channel_bytes +
                       faulty.remap_bytes) /
                    1e6,
                faulty.shed_slo, faulty.timeouts);
    return 0;
}
