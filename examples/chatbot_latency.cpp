/**
 * @file
 * Scenario: a private on-device assistant. The paper motivates 3-10
 * token/s as the floor for real-time interaction (human reading
 * speed). This example answers the product question: which
 * (hardware, model) pairs deliver a 150-token reply fast enough, and
 * what does the full exchange cost in time and energy?
 *
 * Both phases are simulated: prefill streams the weights through the
 * device once while the NPU batches every prompt position, and the
 * reply integrates decode steps as the KV cache grows
 * (CambriconEngine::generate).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/energy.h"
#include "core/engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

using namespace camllm;

namespace {

struct Exchange
{
    double prefill_s;
    double reply_s;
    double tokens_per_s;
    double energy_j;
};

Exchange
simulate(const core::CamConfig &cfg, const llm::ModelConfig &model,
         std::uint32_t prompt_tokens, std::uint32_t reply_tokens)
{
    core::CambriconEngine engine(cfg, model);
    core::GenerateStats g = engine.generate(prompt_tokens, reply_tokens);

    Exchange e;
    e.prefill_s = ticksToSeconds(g.prefill.token_time);
    e.reply_s = ticksToSeconds(g.total_time - g.prefill.token_time);
    e.tokens_per_s = g.decode_tokens_per_s;
    e.energy_j = core::computeEnergy(g.prefill).totalJ() +
                 core::computeEnergy(g.first_decode).totalJ() *
                     reply_tokens;
    return e;
}

} // namespace

int
main()
{
    const std::uint32_t prompt = 256, reply = 150;
    std::printf("Scenario: %u-token prompt, %u-token reply. Real-time"
                " floor: 3 token/s.\n\n",
                prompt, reply);

    Table t("on-device assistant feasibility");
    t.header({"config", "model", "decode tok/s", "prefill (s)",
              "reply (s)", "energy (J)", "real-time?"});

    std::vector<llm::ModelConfig> models = {
        llm::llama2_7b(), llm::llama2_13b(), llm::llama2_70b()};
    for (const auto &cfg :
         {core::presetS(), core::presetM(), core::presetL()}) {
        for (const auto &model : models) {
            Exchange e = simulate(cfg, model, prompt, reply);
            t.row({cfg.name, model.name, Table::fmt(e.tokens_per_s, 2),
                   Table::fmt(e.prefill_s, 2), Table::fmt(e.reply_s, 1),
                   Table::fmt(e.energy_j, 0),
                   e.tokens_per_s >= 3.0 ? "yes" : "no"});
        }
    }
    t.print(std::cout);

    std::printf("\nTakeaway: the L configuration holds a 70B model"
                " above the interactive\nthreshold — the paper's"
                " headline scenario — while S handles 7B-class"
                " models.\n");
    return 0;
}
