/**
 * @file
 * Scenario: a field robot whose LLM weights live in NAND flash for
 * years. Retention errors grow with age and P/E cycles (fresh 3D TLC
 * ~1e-4 after hours of retention; worn parts exceed 1e-2). This
 * example walks the aging curve and shows the task accuracy a
 * deployed agent would observe with and without the on-die outlier
 * ECC — the full bit-exact path: weights -> flash pages + spare ECC
 * -> bit flips -> on-die decode -> INT8 inference -> benchmark score.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "ecc/page_store.h"
#include "llm/eval.h"
#include "llm/tiny_transformer.h"

using namespace camllm;

namespace {

double
fieldAccuracy(const llm::TinyTransformer &clean,
              const llm::EvalDataset &ds, double ber, bool ecc_on,
              std::uint64_t seed)
{
    ecc::PageStoreParams params;
    params.ecc_enabled = ecc_on;
    ecc::PageStore store(params);
    store.load(clean.packWeights());
    store.injectErrors(ber, seed);

    llm::TinyTransformer aged(clean.config(), 1); // same shape
    aged.unpackWeights(store.readBack());
    return llm::evaluate(aged, ds);
}

} // namespace

int
main()
{
    std::printf("Deploying a synthetic LLM agent to flash and aging"
                " it in the field...\n\n");

    llm::TinyConfig cfg;
    llm::TinyTransformer model(cfg, 2024);
    llm::EvalDataset ds =
        llm::makeDataset(model, "field-tasks", 120, 4, 6, 0.9, 7);

    struct AgePoint
    {
        const char *label;
        double ber;
    };
    const AgePoint curve[] = {
        {"fresh part, day 1", 1e-6},
        {"1 year retention", 1e-5},
        {"3 years retention", 1e-4},
        {"heavy P/E wear", 1e-3},
        {"end of life", 1e-2},
    };

    Table t("agent accuracy over flash lifetime (4-way tasks, "
            "chance = 25%)");
    t.header({"flash age", "BER", "no ECC", "with on-die ECC"});
    for (const auto &p : curve) {
        const double a = fieldAccuracy(model, ds, p.ber, false, 11);
        const double b = fieldAccuracy(model, ds, p.ber, true, 11);
        t.row({p.label, Table::fmt(p.ber, 6), Table::fmtPercent(a, 1),
               Table::fmtPercent(b, 1)});
    }
    t.print(std::cout);

    // What the ECC actually did at the heavy-wear point.
    ecc::PageStore store;
    store.load(model.packWeights());
    store.injectErrors(1e-3, 11);
    ecc::OutlierDecodeStats st;
    store.readBack(&st);
    std::printf("\nat BER 1e-3 the on-die ECU performed: %llu outlier"
                " repairs, %llu fake-outlier\nclamps, %llu address"
                " fixes, %llu records dropped (of %llu).\n",
                (unsigned long long)st.voted_repairs,
                (unsigned long long)st.clamped,
                (unsigned long long)st.addr_corrected,
                (unsigned long long)st.records_dropped,
                (unsigned long long)st.records);
    return 0;
}
