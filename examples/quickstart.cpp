/**
 * @file
 * Quickstart: simulate one decode step of Llama2-70B on the
 * Cambricon-LLM-L configuration and print the headline numbers.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/energy.h"
#include "core/engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

int
main()
{
    using namespace camllm;

    // 1. Pick a hardware configuration (Table II presets: S / M / L)
    //    and a model from the zoo.
    core::CamConfig config = core::presetL();
    llm::ModelConfig model = llm::llama2_70b();

    // 2. Build the engine. It wires the flash channels, the on-die
    //    compute cores, the NPU and the LPDDR model together and
    //    plans the hardware-aware tiling for every weight GeMV.
    core::CambriconEngine engine(config, model);

    // 3. Simulate one token of the decode phase.
    core::TokenStats stats = engine.decodeToken();
    core::EnergyBreakdown energy = core::computeEnergy(stats);

    std::printf("model            : %s (%.1fB params)\n",
                model.name.c_str(), double(model.totalParams()) / 1e9);
    std::printf("config           : %s (%u channels x %u chips)\n",
                config.name.c_str(), config.flash.geometry.channels,
                config.flash.geometry.chips_per_channel);
    std::printf("decode speed     : %.2f token/s\n", stats.tokens_per_s);
    std::printf("token latency    : %.1f ms\n",
                double(stats.token_time) / 1e6);
    std::printf("channel usage    : %.1f%%\n",
                stats.avg_channel_util * 100.0);
    std::printf("weights in flash : %.1f%% (alpha)\n",
                stats.alphaEffective() * 100.0);
    std::printf("data moved       : %.2f GB/token\n",
                double(stats.transferBytes()) / 1e9);
    std::printf("energy           : %.2f J/token (%.0f%% NAND array)\n",
                energy.totalJ(),
                energy.array_j / energy.totalJ() * 100.0);

    // 4. The tile plan behind the biggest GeMV of this model.
    core::TilePlan plan = engine.planFor(model.d_ffn, model.d_model);
    std::printf("FFN tile plan    : Hreq=%u Wreq=%u alpha=%.2f "
                "(page util %.0f%%)\n",
                plan.tile.h, plan.tile.w, plan.alpha,
                plan.page_utilization * 100.0);
    return 0;
}
